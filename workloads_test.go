package elsc_test

import (
	"testing"

	"elsc"
)

// TestRunWorkloadRegistry drives every registered workload through the
// public API on a small NUMA machine: the registry promise is that any
// name from Workloads() runs to completion with positive throughput on
// any machine the package can build.
func TestRunWorkloadRegistry(t *testing.T) {
	names := elsc.Workloads()
	if len(names) < 6 {
		t.Fatalf("registry lists %d workloads, want at least 6", len(names))
	}
	for _, name := range names {
		name := name
		t.Run(name, func(t *testing.T) {
			t.Parallel()
			m := elsc.NewMachine(elsc.MachineConfig{
				CPUs:         8,
				SMP:          true,
				CacheDomains: 2,
				Scheduler:    elsc.O1,
				Seed:         9,
				MaxSeconds:   600,
			})
			res := m.RunWorkload(name, elsc.WorkloadParams{Work: 3, Quick: true})
			if res.Workload != name {
				t.Fatalf("result stamped %q, want %q", res.Workload, name)
			}
			if !res.Complete {
				t.Fatalf("%s did not complete", name)
			}
			if res.Throughput <= 0 || res.Unit == "" {
				t.Fatalf("%s: throughput %v unit %q", name, res.Throughput, res.Unit)
			}
		})
	}
}

func TestRunWorkloadUnknownPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("RunWorkload with an unknown name should panic")
		}
	}()
	m := elsc.NewMachine(elsc.MachineConfig{})
	m.RunWorkload("memcached", elsc.WorkloadParams{Quick: true})
}

// TestRunDatabasePublic exercises the bespoke-config entry: a tiny OLTP
// run must commit every transaction and report contention counters.
func TestRunDatabasePublic(t *testing.T) {
	m := elsc.NewMachine(elsc.MachineConfig{
		CPUs: 4, SMP: true, Scheduler: elsc.MultiQueue, Seed: 9, MaxSeconds: 600,
	})
	res := m.RunDatabase(elsc.DatabaseConfig{Clients: 6, TxnsPerClient: 15, LockStripes: 2})
	if want := uint64(6 * 15); res.Txns != want {
		t.Fatalf("committed %d, want %d", res.Txns, want)
	}
	if res.P99TxnUS <= 0 {
		t.Fatal("p99 commit latency should be positive")
	}
}

// TestRunWakeStormPublic exercises the storm entry: every waiter must
// observe every storm, and the percentiles must be ordered.
func TestRunWakeStormPublic(t *testing.T) {
	m := elsc.NewMachine(elsc.MachineConfig{
		CPUs: 4, SMP: true, Scheduler: elsc.Vanilla, Seed: 9, MaxSeconds: 600,
	})
	res := m.RunWakeStorm(elsc.WakeStormConfig{Waiters: 8, Storms: 10})
	if want := uint64(8 * 10); res.Samples != want {
		t.Fatalf("samples = %d, want %d", res.Samples, want)
	}
	if res.P50US > res.P99US || res.P99US > res.MaxUS {
		t.Fatalf("percentiles out of order: %.1f/%.1f/%.1f", res.P50US, res.P99US, res.MaxUS)
	}
}

// TestRunLatencyProbePublic covers the newly exported steady-state probe.
func TestRunLatencyProbePublic(t *testing.T) {
	m := elsc.NewMachine(elsc.MachineConfig{Seed: 9, MaxSeconds: 600})
	res := m.RunLatencyProbe(elsc.LatencyConfig{Probes: 2, Hogs: 8, WakesPerProbe: 20})
	if res.Samples != 40 {
		t.Fatalf("samples = %d, want 40", res.Samples)
	}
}
