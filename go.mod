module elsc

go 1.21
